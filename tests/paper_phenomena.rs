//! Scaled-down end-to-end reproductions of each paper phenomenon, as
//! integration tests: if any of these breaks, some experiment binary will
//! no longer reproduce its table or figure.

use sec_gc::analysis::{dual_heap, fragmentation, zorn};
use sec_gc::core::{GcConfig, PointerPolicy};
use sec_gc::heap::HeapConfig;
use sec_gc::machine::{FramePolicy, Machine, MachineConfig, StackClearing};
use sec_gc::platforms::{BuildOptions, Profile};
use sec_gc::vmspace::{Addr, Endian};
use sec_gc::workloads::{Grid, GridStyle, QueueRun, Reverse, TreeRun};

fn synthetic_machine() -> Machine {
    Profile::synthetic().build(BuildOptions::default()).machine
}

/// Figures 3/4: embedded-link grids retain far more per false reference
/// than cons-cell grids.
#[test]
fn f34_grid_styles_differ_by_an_order_of_magnitude() {
    let mut embedded_total = 0u64;
    let mut cons_total = 0u64;
    for seed in 0..10 {
        let mut m = synthetic_machine();
        embedded_total += Grid {
            rows: 24,
            cols: 24,
            style: GridStyle::EmbeddedLinks,
        }
        .run(&mut m, 1, seed)
        .retained_objects;
        let mut m = synthetic_machine();
        cons_total += Grid {
            rows: 24,
            cols: 24,
            style: GridStyle::ConsCells,
        }
        .run(&mut m, 1, seed)
        .retained_objects;
    }
    assert!(
        embedded_total > 4 * cons_total,
        "embedded {embedded_total} vs cons {cons_total}"
    );
}

/// §4 queues: growth is unbounded exactly when links are kept.
#[test]
fn s4_queue_growth_is_controlled_by_link_clearing() {
    let run = |clear_links| {
        let mut m = synthetic_machine();
        QueueRun {
            operations: 3000,
            window: 20,
            clear_links,
            false_ref_at: Some(50),
        }
        .run(&mut m)
        .final_live_objects
    };
    let kept = run(false);
    let cleared = run(true);
    assert!(kept > 2000, "kept links leak every later node: {kept}");
    assert!(cleared < 30, "cleared links bound the leak: {cleared}");
}

/// §4 trees: mean retention per false reference grows like the height, not
/// the size.
#[test]
fn s4_tree_retention_grows_logarithmically() {
    let mut m = synthetic_machine();
    let small = TreeRun {
        height: 8,
        trials: 40,
    }
    .run(&mut m, 5);
    let mut m = synthetic_machine();
    let large = TreeRun {
        height: 12,
        trials: 40,
    }
    .run(&mut m, 5);
    // 16x more nodes, but mean retention grows far slower than 16x.
    assert!(large.nodes == 16 * small.nodes + 15);
    assert!(
        large.mean_retained < 6.0 * small.mean_retained.max(1.0),
        "mean retention is ~height, not ~size: {} vs {}",
        small.mean_retained,
        large.mean_retained
    );
}

/// §3.1 reversal: stack clearing lowers the apparent-liveness peak; the
/// optimized loop build stays near two lists.
#[test]
fn s31_reversal_peaks_order_correctly() {
    let machine = |clearing: bool| {
        let mut m = Machine::new(MachineConfig {
            endian: Endian::Big,
            gc: GcConfig {
                heap: HeapConfig {
                    heap_base: Addr::new(0x10_0000),
                    max_heap_bytes: 64 << 20,
                    growth_pages: 32,
                    ..HeapConfig::default()
                },
                min_bytes_between_gcs: 16 << 10,
                free_space_divisor: 1 << 24,
                ..GcConfig::default()
            },
            stack_bytes: 2 << 20,
            frame: FramePolicy {
                pad_words: 8,
                clear_on_push: false,
            },
            register_windows: 8,
            allocator_hygiene: false,
            collector_hygiene: false,
            stack_clearing: StackClearing {
                enabled: clearing,
                every_allocs: 32,
                max_bytes_per_clear: 64 << 10,
            },
            ..MachineConfig::default()
        });
        m.add_static_segment(Addr::new(0x2_0000), 4096);
        m
    };
    let shape = Reverse::paper(false).scaled(8);
    let dirty = shape.run(&mut machine(false)).max_apparent_cells;
    let clean = shape.run(&mut machine(true)).max_apparent_cells;
    let optimized = Reverse::paper(true)
        .scaled(8)
        .run(&mut machine(false))
        .max_apparent_cells;
    assert!(
        dirty > clean && clean >= optimized,
        "peaks must order dirty({dirty}) > cleared({clean}) >= optimized({optimized})"
    );
    assert!(
        dirty as f64 >= 1.5 * optimized as f64,
        "unoptimized wastes much more: {dirty} vs {optimized}"
    );
}

/// Observation 7: the largest placeable object shrinks under the
/// all-interior policy relative to first-page, never the other way.
#[test]
fn o7_large_alloc_ordering() {
    use sec_gc::analysis::large_alloc::{default_sizes, sweep};
    let sizes = &default_sizes()[..8];
    let all = sweep(PointerPolicy::AllInterior, 4 << 20, sizes, 1);
    let first = sweep(PointerPolicy::FirstPage, 4 << 20, sizes, 1);
    assert!(all.max_placeable() <= first.max_placeable());
}

/// Conclusions: GC needs more memory than prompt explicit deallocation.
#[test]
fn c1_gc_footprint_exceeds_explicit() {
    let r = zorn::run(
        &zorn::ZornRun {
            operations: 6_000,
            live_target: 600,
            ..zorn::ZornRun::default()
        },
        3,
    );
    assert!(r.gc_overhead_factor() > 1.0);
}

/// Conclusions: the fragmentation comparison runs and the address-ordered
/// policy's largest free run is competitive.
#[test]
fn c1_fragmentation_comparison_runs() {
    let config = fragmentation::FragmentationRun {
        operations: 6_000,
        live_target: 300,
        min_bytes: 8,
        max_bytes: 128,
    };
    let (ao, lifo) = fragmentation::compare(&config, 2);
    assert!(ao.mapped_pages > 0 && lifo.mapped_pages > 0);
}

/// Footnote 4: the dual-heap oracle never harms and identifies junk on a
/// polluted image.
#[test]
fn fn4_oracle_improves_polluted_image() {
    let r = dual_heap::run(&Profile::sparc_static(false), 64 << 10, 12, 12);
    assert!(r.retained_oracle <= r.retained_conservative);
    assert!(r.words_filtered > 0);
}

/// Figure 1 as an integration test: halfword scanning misreads the
/// concatenated integers; word scanning does not.
#[test]
fn f1_alignment_controls_concatenation() {
    use sec_gc::core::{Collector, ScanAlignment};
    use sec_gc::heap::ObjectKind;
    use sec_gc::vmspace::{AddressSpace, SegmentKind, SegmentSpec};

    let run = |alignment| {
        let mut space = AddressSpace::new(Endian::Big);
        space
            .map(SegmentSpec::new(
                "globals",
                SegmentKind::Data,
                Addr::new(0x1_0000),
                64,
            ))
            .expect("maps");
        space
            .write_u32(Addr::new(0x1_0000), 0x0000_0009)
            .expect("mapped");
        space
            .write_u32(Addr::new(0x1_0004), 0x0000_000a)
            .expect("mapped");
        let mut gc = Collector::new(
            space,
            GcConfig {
                heap: HeapConfig {
                    heap_base: Addr::new(0x0009_0000),
                    ..HeapConfig::default()
                },
                scan_alignment: alignment,
                // Expose the raw misidentification: with blacklisting on,
                // the startup collection would blacklist 0x00090000 first.
                blacklisting: false,
                ..GcConfig::default()
            },
        );
        let obj = gc.alloc(8, ObjectKind::Composite).expect("heap has room");
        assert_eq!(obj.raw(), 0x0009_0000);
        gc.collect();
        gc.is_live(obj)
    };
    assert!(!run(ScanAlignment::Word));
    assert!(run(ScanAlignment::HalfWord));
    assert!(run(ScanAlignment::Byte));
}
