//! Differential harness for the allocation fast path: runs with
//! `bump_alloc = true` (bump-cursor blocks, zero-once pages, O(1) stats on
//! the hot path) and `bump_alloc = false` (the old prepopulated-free-list
//! shapes) over identical workloads must be *observationally identical* —
//! same collection counts, same triggers, same sorted live-address
//! fingerprints, same Table-1 retention.
//!
//! The fast path is designed to be address-identical, not merely
//! equivalent: the recycled free list merged with the bump cursor
//! reproduces the address-ordered pop order bit for bit. So every
//! comparison here is exact equality across the whole matrix of sweep
//! strategy (eager × lazy) and mark parallelism (1 × 4 threads).

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sec_gc::analysis::table1;
use sec_gc::core::{observer, CollectReason, GcConfig, GcEvent, GcObserver};
use sec_gc::heap::{HeapConfig, ObjectKind};
use sec_gc::machine::{Machine, MachineConfig};
use sec_gc::platforms::{BuildOptions, Platform, Profile};
use sec_gc::vmspace::{Addr, Endian};

const ROOT_SLOTS: u32 = 12;

/// Records why and in what order every collection began — automatic
/// triggers fire inside `alloc`, so an observer is the only way to see
/// them per cycle.
#[derive(Debug, Default)]
struct Triggers(Vec<(u64, String)>);

impl GcObserver for Triggers {
    fn on_event(&mut self, event: &GcEvent) {
        if let GcEvent::CollectionBegin { gc_no, reason, .. } = event {
            self.0.push((*gc_no, reason.to_string()));
        }
    }
}

/// Everything observable about one run that must not depend on the
/// allocation path. Durations are deliberately excluded — time is the only
/// thing allowed to differ.
#[derive(Debug, PartialEq, Eq)]
struct RunFingerprint {
    collections: u64,
    triggers: Vec<(u64, String)>,
    /// Sorted base addresses of the live heap at each checkpoint.
    checkpoints: Vec<Vec<u32>>,
    bytes_live: u64,
    bytes_allocated_total: u64,
    blacklist_pages: u32,
    false_refs: u64,
}

fn live_addresses(m: &Machine) -> Vec<u32> {
    let mut v: Vec<u32> = m.gc().heap().live_objects().map(|o| o.base.raw()).collect();
    v.sort_unstable();
    v
}

/// A deterministic randomized mutator with *automatic* collection
/// triggering: the threshold is low enough that collections fire from the
/// allocation path itself, so trigger timing (and hence every downstream
/// observable) would expose any behavioral drift in the fast path.
fn run_trace(seed: u64, bump_alloc: bool, lazy_sweep: bool, mark_threads: u32) -> RunFingerprint {
    let triggers = observer(Triggers::default());
    let handle = triggers.clone();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut m = Machine::new(MachineConfig {
        endian: Endian::Big,
        gc: GcConfig {
            heap: HeapConfig {
                heap_base: Addr::new(0x10_0000),
                max_heap_bytes: 16 << 20,
                growth_pages: 16,
                bump_alloc,
                ..HeapConfig::default()
            },
            blacklisting: true,
            lazy_sweep,
            mark_threads,
            min_bytes_between_gcs: 16 << 10,
            free_space_divisor: 4,
            observer: Some(handle),
            ..GcConfig::default()
        },
        seed,
        ..MachineConfig::default()
    });
    m.add_static_segment(Addr::new(0x2_0000), 4096);
    let roots = m.alloc_static(ROOT_SLOTS);
    let junk = m.alloc_static(8);
    for i in 0..8u32 {
        m.store(junk + i * 4, 0x10_0000 + rng.random_range(0..2u32 << 20));
    }

    let mut checkpoints = Vec::new();
    for step in 0..2400u32 {
        match rng.random_range(0..100u32) {
            0..=69 => {
                let bytes = *[12u32, 16, 24, 48, 256]
                    .get(rng.random_range(0..5) as usize)
                    .unwrap();
                let kind = if rng.random_range(0..4u32) == 0 {
                    ObjectKind::Atomic
                } else {
                    ObjectKind::Composite
                };
                let obj = m.alloc(bytes, kind).expect("heap has room");
                if rng.random_range(0..3u32) > 0 {
                    m.store(roots + rng.random_range(0..ROOT_SLOTS) * 4, obj.raw());
                }
            }
            70..=89 => {
                m.store(roots + rng.random_range(0..ROOT_SLOTS) * 4, 0);
            }
            _ => {
                let near = (0x10_0000 + rng.random_range(0..4u32 << 20)) | 1;
                m.store(junk + (rng.random_range(0..8u32)) * 4, near);
            }
        }
        if step % 400 == 399 {
            checkpoints.push(live_addresses(&m));
        }
    }
    let stats = m.collect();
    checkpoints.push(live_addresses(&m));
    let heap = m.gc().heap().stats();
    let trigger_log = triggers.lock().expect("trigger log").0.clone();
    RunFingerprint {
        collections: m.gc().stats().collections,
        triggers: trigger_log,
        checkpoints,
        bytes_live: heap.bytes_live,
        bytes_allocated_total: heap.bytes_allocated_total,
        blacklist_pages: stats.blacklist_pages,
        false_refs: m.gc().stats().total_false_refs,
    }
}

#[test]
fn fast_path_is_invariant_across_sweep_and_mark_matrix() {
    for seed in [3u64, 41] {
        for lazy_sweep in [false, true] {
            for mark_threads in [1u32, 4] {
                let fast = run_trace(seed, true, lazy_sweep, mark_threads);
                assert!(
                    fast.collections > 4,
                    "trace collected often enough to compare (got {})",
                    fast.collections
                );
                assert!(
                    fast.triggers
                        .iter()
                        .any(|(_, r)| r == &CollectReason::Automatic.to_string()),
                    "allocation-triggered collections occurred"
                );
                let slow = run_trace(seed, false, lazy_sweep, mark_threads);
                assert_eq!(
                    fast, slow,
                    "seed {seed}, lazy_sweep {lazy_sweep}, mark_threads {mark_threads}: \
                     bump-cursor allocation diverged from the prepopulated path"
                );
            }
        }
    }
}

fn table1_run(profile: &Profile, bump_alloc: bool) -> sec_gc::workloads::ProgramTReport {
    let shape = table1::shape_for(profile, 25);
    let mut platform = profile.build_custom(
        BuildOptions {
            seed: 11,
            blacklisting: true,
            ..BuildOptions::default()
        },
        |gc| gc.heap.bump_alloc = bump_alloc,
    );
    let Platform { machine, hooks, .. } = &mut platform;
    shape.run(machine, &mut |m| hooks.tick(m))
}

#[test]
fn table1_retention_is_alloc_path_invariant() {
    // The paper's headline metric reproduces bit-identically on the fast
    // path: same retained lists, same per-list fate, same collection count.
    let profile = Profile::sparc_static(false);
    let fast = table1_run(&profile, true);
    let slow = table1_run(&profile, false);
    assert_eq!(fast.lists, slow.lists);
    assert_eq!(
        fast.retained, slow.retained,
        "retention must not depend on the allocation path"
    );
    assert_eq!(fast.reclaimed, slow.reclaimed, "same per-list fate");
    assert_eq!(fast.collections, slow.collections);
    assert_eq!(fast.blacklist_pages, slow.blacklist_pages);
    assert_eq!(fast.representatives, slow.representatives);
    assert_eq!(fast.bytes_live, slow.bytes_live);
}
